//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace uses: the `proptest!` test macro
//! (with `#![proptest_config]`, `name in strategy` and `name: Type`
//! parameters), `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`,
//! `prop_oneof!`, range and tuple strategies, `prop_map`,
//! `prop::collection::{vec, hash_set}`, and `any::<T>()`.
//!
//! Differences from the real crate: no shrinking — instead every case is
//! generated from a deterministic per-case seed, and a failure report
//! prints `PROPTEST_CASE_SEED=<u64>` which replays exactly that case
//! (run with the env var set to re-execute only the failing input).

pub mod strategy {
    use rand::rngs::SmallRng;

    /// RNG handed to strategies; seeded per test case.
    pub type TestRng = SmallRng;

    /// Generates values of `Self::Value` from a seeded RNG.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: std::rc::Rc::new(self),
            }
        }
    }

    /// Object-safe inner trait so [`BoxedStrategy`] can erase the concrete
    /// strategy type (the public [`Strategy`] trait has generic methods).
    trait DynStrategy<V> {
        fn generate_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    pub struct BoxedStrategy<V> {
        inner: std::rc::Rc<dyn DynStrategy<V>>,
    }

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: std::rc::Rc::clone(&self.inner),
            }
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.inner.generate_dyn(rng)
        }
    }

    /// `strategy.prop_map(f)`.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            use rand::Rng;
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    use rand::Rng;
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    use rand::Rng;
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u32, u64, usize, i32, i64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
    }

    /// `Just`-style constant strategy (parity with the real API surface).
    #[derive(Clone, Debug)]
    pub struct Just<V: Clone>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;
        fn generate(&self, _rng: &mut TestRng) -> V {
            self.0.clone()
        }
    }
}

pub mod arbitrary {
    use super::strategy::{Strategy, TestRng};
    use rand::Rng;

    /// Types with a canonical whole-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    use rand::RngCore;
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen_bool(0.5)
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen::<f64>()
        }
    }

    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

pub mod collection {
    use super::strategy::{Strategy, TestRng};
    use rand::Rng;
    use std::collections::HashSet;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `prop::collection::vec(element, min..max)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `prop::collection::hash_set(element, min..max)`. The element domain
    /// must be large enough to reach `min` distinct values.
    pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: std::hash::Hash + Eq,
    {
        assert!(size.start < size.end, "empty size range");
        HashSetStrategy { element, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: std::hash::Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let want = rng.gen_range(self.size.clone());
            let mut out = HashSet::new();
            // Cap draws so a too-small element domain fails loudly instead
            // of spinning forever.
            let mut attempts = 0usize;
            while out.len() < want {
                out.insert(self.element.generate(rng));
                attempts += 1;
                if attempts > want.saturating_mul(1000) + 10_000 {
                    panic!(
                        "hash_set strategy could not reach {want} distinct elements \
                         after {attempts} draws — element domain too small?"
                    );
                }
            }
            out
        }
    }
}

pub mod test_runner {
    use super::strategy::TestRng;
    use rand::SeedableRng;

    /// Runner configuration; only `cases` is meaningful in the stand-in.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases per test.
        pub cases: u32,
        /// Accepted for compatibility; unused (no shrinking here).
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    /// Assertion failure inside a property body (from `prop_assert!`).
    #[derive(Debug)]
    pub struct TestCaseError {
        pub message: String,
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    fn splitmix(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9E3779B97F4A7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
        x ^ (x >> 31)
    }

    /// Drives `case` for each configured case with a deterministic
    /// per-case seed. `PROPTEST_CASE_SEED=<u64>` replays a single case.
    pub fn run_cases<F>(config: ProptestConfig, test_name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        if let Ok(seed_text) = std::env::var("PROPTEST_CASE_SEED") {
            let seed: u64 = seed_text
                .trim()
                .parse()
                .expect("PROPTEST_CASE_SEED must be a u64");
            let mut rng = TestRng::seed_from_u64(seed);
            if let Err(e) = case(&mut rng) {
                panic!("proptest `{test_name}` failed replaying PROPTEST_CASE_SEED={seed}: {e}");
            }
            return;
        }
        // Deterministic base: stable across runs (CI-friendly), distinct
        // per test so sibling properties don't see identical streams.
        let base = test_name
            .bytes()
            .fold(0x00C0_FFEE_5EED_u64, |h, b| splitmix(h ^ b as u64));
        for case_idx in 0..config.cases {
            let seed = splitmix(base ^ (case_idx as u64).wrapping_mul(0x2545F4914F6CDD1D));
            let mut rng = TestRng::seed_from_u64(seed);
            if let Err(e) = case(&mut rng) {
                panic!(
                    "proptest `{test_name}` case {case_idx} failed \
                     (replay: PROPTEST_CASE_SEED={seed}): {e}"
                );
            }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    /// Lets test code write `prop::collection::vec(...)`.
    pub use crate as prop;
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n  {}",
            stringify!($left), stringify!($right), l, r, format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// The test-definition macro. Handles an optional leading
/// `#![proptest_config(...)]` and any number of test functions whose
/// parameters are `name in strategy` or `name: Type` (meaning
/// `any::<Type>()`), in any mix, with optional trailing comma.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::__proptest_params!(@munch __config; stringify!($name); $body; []; $($params)*);
        }
        $crate::__proptest_fns!(($config) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_params {
    // Done munching: emit the runner call.
    (@munch $config:ident; $name:expr; $body:block; [$(($pat:pat, $strategy:expr))*];) => {
        $crate::test_runner::run_cases($config, $name, |__rng| {
            $(let $pat = $crate::strategy::Strategy::generate(&($strategy), __rng);)*
            let __case = move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                $body
                ::std::result::Result::Ok(())
            };
            __case()
        });
    };
    // `name: Type` (trailing / followed by more params).
    (@munch $config:ident; $name:expr; $body:block; [$($acc:tt)*]; $p:ident : $t:ty) => {
        $crate::__proptest_params!(@munch $config; $name; $body;
            [$($acc)* ($p, $crate::arbitrary::any::<$t>())];);
    };
    (@munch $config:ident; $name:expr; $body:block; [$($acc:tt)*]; $p:ident : $t:ty, $($rest:tt)*) => {
        $crate::__proptest_params!(@munch $config; $name; $body;
            [$($acc)* ($p, $crate::arbitrary::any::<$t>())]; $($rest)*);
    };
    // `pattern in strategy` (trailing / followed by more params).
    (@munch $config:ident; $name:expr; $body:block; [$($acc:tt)*]; $p:pat in $s:expr) => {
        $crate::__proptest_params!(@munch $config; $name; $body; [$($acc)* ($p, $s)];);
    };
    (@munch $config:ident; $name:expr; $body:block; [$($acc:tt)*]; $p:pat in $s:expr, $($rest:tt)*) => {
        $crate::__proptest_params!(@munch $config; $name; $body; [$($acc)* ($p, $s)]; $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(a in 0u64..100, b in 5u32..=9, c: bool) {
            prop_assert!(a < 100);
            prop_assert!((5..=9).contains(&b));
            let _ = c;
        }

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(0u64..10, 3..7)) {
            prop_assert!((3..7).contains(&v.len()), "len {}", v.len());
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn hash_set_distinct(s in prop::collection::hash_set(0u64..500, 1..20)) {
            prop_assert!(!s.is_empty() && s.len() < 20);
        }

        #[test]
        fn oneof_and_map_compose(
            x in prop_oneof![
                (0u64..10, 0u64..10).prop_map(|(a, b)| a + b),
                (100u64..110).prop_map(|a| a),
            ],
        ) {
            prop_assert!(x < 19 || (100..110).contains(&x), "got {}", x);
        }
    }

    #[test]
    #[should_panic(expected = "PROPTEST_CASE_SEED=")]
    fn failure_reports_replay_seed() {
        crate::test_runner::run_cases(
            crate::test_runner::ProptestConfig {
                cases: 1,
                ..Default::default()
            },
            "always_fails",
            |_rng| Err(crate::test_runner::TestCaseError::fail("boom")),
        );
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(0u64..1000, 5..6);
        let mut seen = Vec::new();
        for _ in 0..2 {
            let mut out = Vec::new();
            crate::test_runner::run_cases(
                crate::test_runner::ProptestConfig {
                    cases: 3,
                    ..Default::default()
                },
                "det",
                |rng| {
                    out.push(strat.generate(rng));
                    Ok(())
                },
            );
            seen.push(out);
        }
        assert_eq!(seen[0], seen[1]);
    }
}
