//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Implements the subset this workspace uses with parking_lot's API
//! shape: `lock()`/`read()`/`write()` return guards directly (poisoning
//! is swallowed — a panicking lock holder does not wedge every later
//! acquirer, which matters for the fault-injection tests), and
//! `Condvar::wait*` take `&mut MutexGuard` instead of consuming it.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// A mutex whose `lock()` returns the guard directly (no `Result`).
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so Condvar can temporarily take the std guard for waiting.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let g = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(g) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable working on [`MutexGuard`]s in place.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = match self.inner.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(g);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res),
            Err(p) => {
                let (g, res) = p.into_inner();
                (g, res)
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Reader-writer lock whose `read()`/`write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
    poisoned: AtomicBool,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
            poisoned: AtomicBool::new(false),
        }
    }
}

impl<T> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let g = match self.inner.read() {
            Ok(g) => g,
            Err(p) => {
                self.poisoned.store(true, Ordering::Relaxed);
                p.into_inner()
            }
        };
        RwLockReadGuard { inner: g }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let g = match self.inner.write() {
            Ok(g) => g,
            Err(p) => {
                self.poisoned.store(true, Ordering::Relaxed);
                p.into_inner()
            }
        };
        RwLockWriteGuard { inner: g }
    }
}

impl<T> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let h = std::thread::spawn(move || {
            let mut g = m2.lock();
            while !*g {
                cv2.wait(&mut g);
            }
        });
        std::thread::sleep(Duration::from_millis(5));
        *m.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn poisoned_mutex_still_locks() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 7, "lock after panic must not wedge");
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
