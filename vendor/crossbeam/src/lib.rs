//! Offline stand-in for `crossbeam`, providing the subset this workspace
//! uses: `crossbeam::channel::{unbounded, Sender, Receiver}`. The channel
//! is MPMC — both halves are `Clone` (the FASTER I/O pool hands one
//! receiver to several reader threads) — and receivers iterate until every
//! sender is dropped, matching crossbeam's disconnect semantics.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Chan<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone;
    /// carries the rejected message like crossbeam's.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like upstream: Debug without requiring `T: Debug`, so callers can
    // `.expect()` sends of non-Debug payloads.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    impl<T> Sender<T> {
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if self.chan.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(msg));
            }
            let mut q = self
                .chan
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner());
            q.push_back(msg);
            drop(q);
            self.chan.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.chan.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake blocked receivers so they observe
                // the disconnect instead of sleeping forever.
                self.chan.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self
                .chan
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(msg) = q.pop_front() {
                    return Ok(msg);
                }
                if self.chan.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self
                    .chan
                    .ready
                    .wait(q)
                    .unwrap_or_else(|p| p.into_inner());
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self
                .chan
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner());
            if let Some(msg) = q.pop_front() {
                Ok(msg)
            } else if self.chan.senders.load(Ordering::Acquire) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.chan.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    pub struct IntoIter<T> {
        rx: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter { rx: self }
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn iteration_ends_when_senders_drop() {
            let (tx, rx) = unbounded();
            tx.send(10).unwrap();
            tx.send(20).unwrap();
            drop(tx);
            let got: Vec<i32> = rx.into_iter().collect();
            assert_eq!(got, vec![10, 20]);
        }

        #[test]
        fn mpmc_clone_receiver_shares_queue() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            let h = std::thread::spawn(move || rx2.recv().unwrap());
            tx.send(42u64).unwrap();
            let seen = h.join().unwrap();
            assert_eq!(seen, 42);
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_fails_after_all_receivers_drop() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(5), Err(SendError(5)));
        }

        #[test]
        fn blocked_receiver_wakes_on_disconnect() {
            let (tx, rx) = unbounded::<u8>();
            let h = std::thread::spawn(move || rx.recv());
            std::thread::sleep(std::time::Duration::from_millis(5));
            drop(tx);
            assert_eq!(h.join().unwrap(), Err(RecvError));
        }
    }
}
