//! Offline stand-in for `serde_derive`.
//!
//! Derives the vendored `serde`'s simplified `Serialize`/`Deserialize`
//! traits (a `Value`-tree model, see `vendor/serde`). No `syn`/`quote` —
//! the input item is walked with `proc_macro`'s own token trees, which is
//! enough for the two shapes this workspace derives on:
//!
//! - structs with named fields (`CheckpointManifest`, `SessionCpr`)
//! - enums of unit variants, optionally with explicit discriminants
//!   (`CheckpointKind`, `Phase`)
//!
//! Anything else (tuple structs, data-carrying variants, generics) is a
//! compile error pointing here, so a future change fails loudly instead
//! of silently mis-serializing.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<String> },
}

fn is_punct(tt: &TokenTree, ch: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == ch)
}

/// Walks the item header (attributes, visibility, `struct`/`enum` keyword,
/// name) and the brace-delimited body into a [`Shape`].
fn parse_shape(input: TokenStream, trait_name: &str) -> Shape {
    let mut iter = input.into_iter().peekable();
    let mut kind: Option<String> = None;
    while let Some(tt) = iter.next() {
        match &tt {
            // `#[attr]` / doc comment: skip the bracket group too.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next();
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                // `pub(crate)` etc: skip the restriction group.
                if matches!(
                    iter.peek(),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    iter.next();
                }
            }
            TokenTree::Ident(id) if id.to_string() == "struct" || id.to_string() == "enum" => {
                kind = Some(id.to_string());
                break;
            }
            other => panic!(
                "derive({trait_name}): unexpected token `{other}` before struct/enum keyword"
            ),
        }
    }
    let kind = kind.unwrap_or_else(|| panic!("derive({trait_name}): no struct/enum keyword"));
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive({trait_name}): expected type name, got {other:?}"),
    };
    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("derive({trait_name}) on {name}: generics are not supported by the vendored serde_derive")
            }
            Some(_) => continue,
            None => panic!(
                "derive({trait_name}) on {name}: only braced bodies are supported (no tuple/unit items)"
            ),
        }
    };
    if kind == "struct" {
        Shape::Struct {
            name,
            fields: parse_named_fields(body, trait_name),
        }
    } else {
        Shape::Enum {
            name,
            variants: parse_unit_variants(body, trait_name),
        }
    }
}

fn parse_named_fields(body: TokenStream, trait_name: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Skip per-field attributes and visibility.
        loop {
            match iter.peek() {
                Some(tt) if is_punct(tt, '#') => {
                    iter.next();
                    iter.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    iter.next();
                    if matches!(
                        iter.peek(),
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                    ) {
                        iter.next();
                    }
                }
                _ => break,
            }
        }
        let field = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => {
                panic!("derive({trait_name}): expected field name, got `{other}`")
            }
            None => break,
        };
        match iter.next() {
            Some(tt) if is_punct(&tt, ':') => {}
            other => panic!(
                "derive({trait_name}): expected `:` after field `{field}`, got {other:?}"
            ),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0, so
        // `Vec<SessionCpr>` and `HashMap<K, V>` both terminate correctly.
        let mut angle_depth = 0i32;
        for tt in iter.by_ref() {
            if is_punct(&tt, '<') {
                angle_depth += 1;
            } else if is_punct(&tt, '>') {
                angle_depth -= 1;
            } else if is_punct(&tt, ',') && angle_depth == 0 {
                break;
            }
        }
        fields.push(field);
    }
    fields
}

fn parse_unit_variants(body: TokenStream, trait_name: &str) -> Vec<String> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        loop {
            match iter.peek() {
                Some(tt) if is_punct(tt, '#') => {
                    iter.next();
                    iter.next();
                }
                _ => break,
            }
        }
        let variant = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => {
                panic!("derive({trait_name}): expected variant name, got `{other}`")
            }
            None => break,
        };
        // Unit variants only; an explicit `= discriminant` is skipped.
        match iter.next() {
            None => {
                variants.push(variant);
                break;
            }
            Some(tt) if is_punct(&tt, ',') => {}
            Some(tt) if is_punct(&tt, '=') => {
                for tt in iter.by_ref() {
                    if is_punct(&tt, ',') {
                        break;
                    }
                }
            }
            Some(TokenTree::Group(_)) => panic!(
                "derive({trait_name}): variant `{variant}` carries data — only unit variants are supported by the vendored serde_derive"
            ),
            Some(other) => {
                panic!("derive({trait_name}): unexpected token `{other}` after variant `{variant}`")
            }
        }
        variants.push(variant);
    }
    variants
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let out = match parse_shape(input, "Serialize") {
        Shape::Struct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__fields.push((\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Object(__fields)\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),\n"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let out = match parse_shape(input, "Deserialize") {
        Shape::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::get_field(__v, \"{f}\")?,\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         if !matches!(__v, ::serde::Value::Object(_)) {{\n\
                             return ::std::result::Result::Err(::serde::DeError::new(\
                                 format!(\"{name}: expected object, got {{}}\", __v.kind())));\n\
                         }}\n\
                         ::std::result::Result::Ok({name} {{\n{inits}}})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("Some(\"{v}\") => ::std::result::Result::Ok({name}::{v}),\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match __v.as_str() {{\n\
                             {arms}\
                             _ => ::std::result::Result::Err(::serde::DeError::new(\
                                 format!(\"{name}: unknown variant {{}}\", __v.kind()))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse().expect("generated Deserialize impl parses")
}
