//! Offline stand-in for `serde`.
//!
//! Instead of the real crate's visitor architecture, this model
//! serializes through an owned [`Value`] tree: `Serialize` renders a type
//! into a `Value`, `Deserialize` rebuilds it from one, and the vendored
//! `serde_json` handles text. Integers are kept exact (`u64`/`i64`
//! variants, no f64 round-trip) because checkpoint manifests carry packed
//! 64-bit log addresses whose upper bits must survive a round-trip.
//!
//! The `Serialize`/`Deserialize` *derive macros* are re-exported from the
//! vendored `serde_derive`, so `use serde::{Serialize, Deserialize}`
//! imports both the traits and the derives, same as the real crate with
//! the `derive` feature.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    UInt(u64),
    Int(i64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered, so emitted JSON lists fields in declaration
    /// order like the real derive.
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Human-readable node kind for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error: a message describing the mismatch.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    pub fn new(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Renders `self` into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Rebuilds `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Field lookup used by derived struct impls: a missing key deserializes
/// as `Null`, so `Option` fields tolerate absent entries (forward/backward
/// compatible manifests).
pub fn get_field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
    match v.get(name) {
        Some(field) => {
            T::from_value(field).map_err(|e| DeError::new(format!("field `{name}`: {e}")))
        }
        None => T::from_value(&Value::Null)
            .map_err(|_| DeError::new(format!("missing field `{name}`"))),
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match *v {
                    Value::UInt(n) => n,
                    Value::Int(n) if n >= 0 => n as u64,
                    _ => {
                        return Err(DeError::new(format!(
                            concat!("expected ", stringify!($t), ", got {}"),
                            v.kind()
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    DeError::new(format!(
                        concat!("value {} out of range for ", stringify!($t)),
                        n
                    ))
                })
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match *v {
                    Value::Int(n) => n,
                    Value::UInt(n) if n <= i64::MAX as u64 => n as i64,
                    _ => {
                        return Err(DeError::new(format!(
                            concat!("expected ", stringify!($t), ", got {}"),
                            v.kind()
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    DeError::new(format!(
                        concat!("value {} out of range for ", stringify!($t)),
                        n
                    ))
                })
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::new(format!("expected bool, got {}", v.kind()))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::Float(f) => Ok(f),
            Value::UInt(n) => Ok(n as f64),
            Value::Int(n) => Ok(n as f64),
            _ => Err(DeError::new(format!("expected number, got {}", v.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::new(format!("expected string, got {}", v.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::new(format!("expected array, got {}", v.kind()))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrip() {
        let some: Option<u64> = Some(7);
        let none: Option<u64> = None;
        assert_eq!(some.to_value(), Value::UInt(7));
        assert_eq!(none.to_value(), Value::Null);
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u64>::from_value(&Value::UInt(9)).unwrap(), Some(9));
    }

    #[test]
    fn u64_preserves_high_bits() {
        let big = u64::MAX - 3;
        assert_eq!(u64::from_value(&big.to_value()).unwrap(), big);
    }

    #[test]
    fn missing_field_is_none_for_option() {
        let obj = Value::Object(vec![("a".to_string(), Value::UInt(1))]);
        let a: u64 = get_field(&obj, "a").unwrap();
        assert_eq!(a, 1);
        let b: Option<u64> = get_field(&obj, "b").unwrap();
        assert_eq!(b, None);
        assert!(get_field::<u64>(&obj, "b").is_err());
    }
}
