//! Offline stand-in for `tempfile`, providing the subset this workspace
//! uses: [`tempdir()`] returning a [`TempDir`] that deletes its directory
//! tree on drop. Names are made unique by pid + a process-wide counter +
//! a clock-derived nonce, so concurrent test processes don't collide.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A directory under the system temp dir, removed recursively on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Consumes the guard without deleting the directory.
    pub fn into_path(mut self) -> PathBuf {
        std::mem::take(&mut self.path)
    }
}

impl AsRef<Path> for TempDir {
    fn as_ref(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        if !self.path.as_os_str().is_empty() {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}

/// Creates a fresh uniquely-named directory in [`std::env::temp_dir`].
pub fn tempdir() -> std::io::Result<TempDir> {
    let base = std::env::temp_dir();
    let pid = std::process::id();
    loop {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let nonce = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos())
            .unwrap_or(0);
        let path = base.join(format!(".tmp-cpr-{pid}-{n}-{nonce:08x}"));
        match std::fs::create_dir(&path) {
            Ok(()) => return Ok(TempDir { path }),
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => continue,
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_and_cleans_up() {
        let keep;
        {
            let d = tempdir().unwrap();
            keep = d.path().to_path_buf();
            std::fs::write(d.path().join("x.txt"), b"hi").unwrap();
            assert!(keep.exists());
        }
        assert!(!keep.exists(), "directory removed on drop");
    }

    #[test]
    fn distinct_paths() {
        let a = tempdir().unwrap();
        let b = tempdir().unwrap();
        assert_ne!(a.path(), b.path());
    }
}
