//! Offline stand-in for `criterion`: same macro/builder surface
//! (`criterion_group!`, `criterion_main!`, `Criterion::bench_function`,
//! `Bencher::iter`, `black_box`) with a simple wall-clock measurement
//! loop instead of the real statistical engine. Good enough to keep the
//! bench targets compiling and producing comparable ns/iter numbers.

use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bench configuration + reporter.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be >= 2");
        self.sample_size = n;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        b.report(id);
        self
    }
}

pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, amortizing the clock reads over auto-sized batches.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up, and derive a batch size targeting ~1ms per sample so
        // Instant::now overhead stays negligible for nanosecond routines.
        let warm_start = Instant::now();
        let mut iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            iters += 1;
        }
        let per_iter = self.warm_up_time.as_nanos() as f64 / iters.max(1) as f64;
        let batch = ((1_000_000.0 / per_iter.max(0.1)) as u64).clamp(1, 10_000_000);

        let budget_per_sample = self.measurement_time / self.sample_size as u32;
        for _ in 0..self.sample_size {
            let sample_start = Instant::now();
            let mut done: u64 = 0;
            loop {
                for _ in 0..batch {
                    black_box(routine());
                }
                done += batch;
                if sample_start.elapsed() >= budget_per_sample {
                    break;
                }
            }
            let ns = sample_start.elapsed().as_nanos() as f64 / done as f64;
            self.samples_ns.push(ns);
        }
    }

    fn report(&self, id: &str) {
        if self.samples_ns.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let median = sorted[sorted.len() / 2];
        let (lo, hi) = (sorted[0], sorted[sorted.len() - 1]);
        println!("{id:<40} time: [{lo:>10.2} ns {median:>10.2} ns {hi:>10.2} ns]");
    }
}

/// Defines a group function running each target with the given config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(15));
        let mut x = 0u64;
        c.bench_function("smoke/add", |b| {
            b.iter(|| {
                x = x.wrapping_add(1);
                x
            })
        });
        assert!(x > 0);
    }
}
