//! A Kafka-style message pipeline (paper Sec. 2, footnote 1): clients
//! consume messages from a replayable input log, apply them to a FASTER
//! store, and *prune their in-flight buffers at CPR points*. After a
//! crash, each client resumes from exactly the first unacknowledged
//! message — no message is lost, none is applied twice.
//!
//! ```sh
//! cargo run --release --example message_pipeline
//! ```

use std::collections::VecDeque;

use cpr::faster::{CheckpointVariant, FasterKv, FasterBuilder, ReadResult};

/// A message: increment `key`'s counter by `delta`.
#[derive(Debug, Clone, Copy)]
struct Message {
    key: u64,
    delta: u64,
}

/// A replayable input source (stand-in for a Kafka partition): retains
/// messages until the consumer acknowledges a prefix.
struct InputLog {
    messages: Vec<Message>,
    /// Index of the first unacknowledged message.
    acked: usize,
}

impl InputLog {
    fn synthetic(n: usize, seed: u64) -> Self {
        let mut rng = seed | 1;
        let messages = (0..n)
            .map(|_| {
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                Message {
                    key: rng % 100,
                    delta: 1 + (rng >> 32) % 9,
                }
            })
            .collect();
        InputLog { messages, acked: 0 }
    }

    /// Prune everything before `upto` (CPR point = message count).
    fn ack(&mut self, upto: usize) {
        self.acked = self.acked.max(upto);
    }

    /// Replay from the first unacknowledged message.
    fn replay_from(&self, serial: usize) -> &[Message] {
        &self.messages[serial..]
    }
}

fn expected_totals(msgs: &[Message]) -> std::collections::HashMap<u64, u64> {
    let mut m = std::collections::HashMap::new();
    for msg in msgs {
        *m.entry(msg.key).or_insert(0) += msg.delta;
    }
    m
}

fn main() {
    let dir = tempfile::tempdir().expect("tempdir");
    let mut input = InputLog::synthetic(50_000, 0xCAFE);
    let mut in_flight: VecDeque<usize> = VecDeque::new();

    // Phase 1: consume 30k messages, committing twice along the way.
    let crash_after = 30_000usize;
    {
        let kv: FasterKv<u64> = FasterBuilder::u64_sums(dir.path()).open().expect("open");
        let mut session = kv.start_session(1);
        let batch: Vec<Message> = input.messages[..crash_after].to_vec();
        for (i, msg) in batch.iter().enumerate() {
            session.rmw(msg.key, msg.delta);
            in_flight.push_back(i + 1); // serial of this message
            if (i + 1) % 12_000 == 0 {
                kv.request_checkpoint(CheckpointVariant::FoldOver, true);
            }
            // Prune the client buffer at the session's durable prefix.
            let durable = session.durable_serial() as usize;
            while in_flight.front().is_some_and(|&s| s <= durable) {
                in_flight.pop_front();
            }
            input.ack(durable);
        }
        println!(
            "consumed {crash_after} messages; input log acked through {} \
             ({} still in flight)",
            input.acked,
            in_flight.len()
        );
        // <- crash: everything after the last CPR point is lost in the
        //    store but still present in the input log.
    }

    // Phase 2: recover and resume from the CPR point.
    let (kv, _) = FasterBuilder::u64_sums(dir.path()).recover().expect("recover");
    let (mut session, cpr_point) = kv.continue_session(1);
    println!("recovered session to serial {cpr_point}; replaying the rest");
    assert!(
        (cpr_point as usize) <= crash_after,
        "CPR point beyond what we consumed"
    );
    assert!(
        cpr_point as usize >= input.acked,
        "acked messages must be durable — CPR guarantee violated"
    );

    // Replay from the recovered serial: exactly-once resumes.
    for msg in input.replay_from(cpr_point as usize) {
        session.rmw(msg.key, msg.delta);
    }
    while session.pending_len() > 0 {
        session.refresh();
    }

    // Verify: totals equal a clean single pass over all messages.
    let expect = expected_totals(&input.messages);
    for (key, total) in expect {
        match session.read(key) {
            ReadResult::Found(v) => assert_eq!(
                v, total,
                "key {key}: got {v}, want {total} — lost or duplicated message"
            ),
            other => panic!("key {key}: {other:?}"),
        }
    }
    println!(
        "all {} messages applied exactly once across the crash ✔",
        input.messages.len()
    );
}
