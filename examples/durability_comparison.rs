//! Side-by-side comparison of the three durability backends on the same
//! workload — a miniature of the paper's Fig. 2: CPR (this paper) vs CALC
//! (atomic commit log) vs WAL (group commit), single-key update
//! transactions on a low-contention key space.
//!
//! ```sh
//! cargo run --release --example durability_comparison
//! ```

use std::time::{Duration, Instant};

use cpr::memdb::{Access, Durability, MemDb, TxnRequest};
use cpr::workload::keys::KeyDist;
use cpr::workload::txn::{TxnConfig, TxnGenerator};

const KEYS: u64 = 100_000;
const SECONDS: f64 = 1.0;

fn run(system: Durability, name: &str) {
    let dir = tempfile::tempdir().expect("tempdir");
    let db: MemDb<u64> = MemDb::builder(system)
            .dir(dir.path())
            .capacity(KEYS as usize * 2)
        .open()
    .expect("open");
    for k in 0..KEYS {
        db.load(k, k);
    }

    let mut session = db.session(0);
    let mut generator = TxnGenerator::new(
        TxnConfig::mix(KEYS, KeyDist::Zipfian { theta: 0.1 }, 1, 50),
        42,
    );
    let mut reads = Vec::new();
    let mut accesses = Vec::new();
    let mut committed = 0u64;
    let started = Instant::now();
    let mut committed_once = false;
    while started.elapsed().as_secs_f64() < SECONDS {
        for _ in 0..1024 {
            let txn = generator.next_txn();
            accesses.clear();
            accesses.extend(txn.accesses.iter().map(|&(k, a)| {
                (
                    k,
                    match a {
                        cpr::workload::AccessType::Read => Access::Read,
                        cpr::workload::AccessType::Write => Access::Write,
                    },
                )
            }));
            let req = TxnRequest {
                accesses: &accesses,
                write_seeds: &txn.write_vals,
            };
            while session.execute(&req, &mut reads).is_err() {}
            committed += 1;
        }
        // One asynchronous commit mid-run: throughput should not dip.
        if !committed_once && started.elapsed().as_secs_f64() > SECONDS / 2.0 {
            committed_once = true;
            db.request_commit();
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    if matches!(system, Durability::Cpr | Durability::Calc) {
        // Let the in-flight commit finish before reporting.
        while db.committed_version() < 1 {
            session.refresh();
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    println!(
        "{name:>5}: {:>7.3} M txns/sec  ({committed} txns, durable prefix {})",
        committed as f64 / elapsed / 1e6,
        session.durable_serial(),
    );
}

fn main() {
    println!("single-key 50:50 update transactions, {KEYS} keys, one commit mid-run\n");
    run(Durability::Cpr, "CPR");
    run(Durability::Calc, "CALC");
    run(Durability::Wal, "WAL");
    println!(
        "\nCPR avoids both the commit-log append (CALC) and the redo-record\n\
         copy + LSN allocation (WAL) — on a many-core machine the gap grows\n\
         with thread count (paper Fig. 2); run `cpr-bench fig02` for the sweep."
    );
}
