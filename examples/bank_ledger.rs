//! A transactional bank ledger on the in-memory database: concurrent
//! transfer transactions under strict 2PL No-Wait, periodic CPR commits,
//! a crash, and recovery that preserves the conservation-of-money
//! invariant (transactional consistency across the checkpoint).
//!
//! ```sh
//! cargo run --release --example bank_ledger
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cpr::memdb::{Access, Durability, MemDb, TxnRequest};

const ACCOUNTS: u64 = 64;
const INITIAL_BALANCE: u64 = 1_000;
const TELLERS: u64 = 4;

fn main() {
    let dir = tempfile::tempdir().expect("tempdir");
    let opts = || {
        MemDb::builder(Durability::Cpr)
            .dir(dir.path())
            .capacity(ACCOUNTS as usize * 2)
            .refresh_every(32)
    };

    {
        let db: MemDb<u64> = opts().open().expect("open");
        for a in 0..ACCOUNTS {
            db.load(a, INITIAL_BALANCE);
        }
        println!(
            "loaded {ACCOUNTS} accounts x {INITIAL_BALANCE} = total {}",
            ACCOUNTS * INITIAL_BALANCE
        );

        let stop = Arc::new(AtomicBool::new(false));
        let tellers: Vec<_> = (0..TELLERS)
            .map(|g| {
                let db = db.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let mut session = db.session(g);
                    let mut reads = Vec::new();
                    let mut rng = g.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
                    let mut transfers = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        // Pick two distinct accounts.
                        rng ^= rng << 13;
                        rng ^= rng >> 7;
                        rng ^= rng << 17;
                        let from = rng % ACCOUNTS;
                        let to = (from + 1 + (rng >> 8) % (ACCOUNTS - 1)) % ACCOUNTS;

                        // Optimistic overdraft check (approximate — the
                        // conservation invariant never depends on it).
                        let read_txn = TxnRequest {
                            accesses: &[(from, Access::Read)],
                            write_seeds: &[],
                        };
                        if session.execute(&read_txn, &mut reads).is_err() {
                            continue; // conflict: retry with new accounts
                        }
                        let amount = (rng >> 16) % 50;
                        if reads[0] < amount {
                            continue;
                        }
                        // The transfer itself is ONE transaction using
                        // merge (read-modify-write) accesses: both account
                        // updates apply atomically under strict 2PL, so
                        // money is conserved exactly — even across the
                        // checkpoint boundary.
                        let accesses = [(from, Access::Merge), (to, Access::Merge)];
                        let seeds = [amount.wrapping_neg(), amount];
                        let write_txn = TxnRequest {
                            accesses: &accesses,
                            write_seeds: &seeds,
                        };
                        if session.execute(&write_txn, &mut reads).is_ok() {
                            transfers += 1;
                        }
                    }
                    // Keep refreshing so an in-flight commit can complete.
                    while db.committed_version() < 2 {
                        session.refresh();
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    transfers
                })
            })
            .collect();

        // Two CPR commits while transfers are flying.
        std::thread::sleep(Duration::from_millis(100));
        assert!(db.request_commit());
        assert!(db.wait_for_version(1, Duration::from_secs(10)));
        println!("commit of version 1 complete (transfers still running)");
        std::thread::sleep(Duration::from_millis(100));
        assert!(db.request_commit());
        assert!(db.wait_for_version(2, Duration::from_secs(10)));
        println!("commit of version 2 complete");

        stop.store(true, Ordering::Relaxed);
        let total_transfers: u64 = tellers.into_iter().map(|t| t.join().unwrap()).sum();
        println!("executed {total_transfers} transfers; crashing now");
        // <- crash (drop without further commits)
    }

    let (db, manifest) = opts().recover().expect("recover");
    let manifest = manifest.expect("committed checkpoint");
    println!(
        "recovered version {} with {} sessions' CPR points",
        manifest.version,
        manifest.sessions.len()
    );

    let total: u64 = (0..ACCOUNTS)
        .map(|a| db.read(a).expect("account"))
        .fold(0u64, u64::wrapping_add);
    println!("total balance after recovery: {total}");
    assert_eq!(
        total,
        ACCOUNTS * INITIAL_BALANCE,
        "conservation of money violated: the checkpoint was not \
         transactionally consistent!"
    );
    println!("invariant holds: the CPR checkpoint is transactionally consistent");
}
