//! Quickstart: open a FASTER store, run a session, take a CPR commit,
//! crash, recover, and continue the session from its CPR point.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cpr::faster::{CheckpointVariant, FasterKv, FasterBuilder, FasterSession, ReadResult};

/// Post-recovery reads may go pending (records start disk-resident);
/// resolve them synchronously for this demo.
fn read_blocking(session: &mut FasterSession<u64>, key: u64) -> Option<u64> {
    match session.read(key) {
        ReadResult::Found(v) => Some(v),
        ReadResult::NotFound => None,
        ReadResult::Evicted => panic!("session evicted"),
        ReadResult::Pending => {
            let mut out = Vec::new();
            loop {
                session.refresh();
                session.drain_completions(&mut out);
                if let Some(c) = out.iter().find(|c| c.key == key) {
                    return c.value;
                }
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
        }
    }
}

fn main() {
    let dir = tempfile::tempdir().expect("tempdir");
    println!("store directory: {}", dir.path().display());

    // ---- normal operation --------------------------------------------------
    {
        let kv: FasterKv<u64> =
            FasterBuilder::u64_sums(dir.path()).open().expect("open store");
        let mut session = kv.start_session(/* guid */ 7);

        for k in 0..1000u64 {
            session.upsert(k, k * 2);
        }
        // Read-modify-write: running per-key sums, as in the paper's
        // extended YCSB workload.
        for _ in 0..10 {
            session.rmw(42, 1);
        }
        assert_eq!(session.read(42), ReadResult::Found(42 * 2 + 10));

        // Request a CPR commit. It returns immediately; worker sessions
        // realize the phase transitions as they refresh their epochs.
        assert!(kv.request_checkpoint(CheckpointVariant::FoldOver, false));
        while kv.committed_version() < 1 {
            session.refresh();
        }
        println!(
            "commit 1 done: session 7's CPR point = serial {}",
            session.durable_serial()
        );

        // These operations are *after* the CPR point: they will be lost.
        for k in 0..10u64 {
            session.upsert(1_000_000 + k, 1);
        }
        println!("wrote 10 post-commit keys (will not survive the crash)");
        // <- simulated crash: the store is dropped without another commit.
    }

    // ---- recovery ----------------------------------------------------------
    let (kv, manifest) =
        FasterBuilder::u64_sums(dir.path()).recover().expect("recover");
    let manifest = manifest.expect("one committed checkpoint");
    println!(
        "recovered checkpoint: version {} kind {:?}",
        manifest.version, manifest.kind
    );

    // Re-establish the session: FASTER reports the serial number it
    // recovered to, so the client knows exactly which requests to replay.
    let (mut session, cpr_point) = kv.continue_session(7);
    println!("session 7 recovered to serial {cpr_point}");

    assert_eq!(read_blocking(&mut session, 42), Some(42 * 2 + 10));
    assert_eq!(read_blocking(&mut session, 1_000_000), None);
    println!("pre-point state intact; post-point writes gone — CPR semantics hold");
}
